package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"dagger/internal/metrics"
	"dagger/internal/retry"
)

// Reliable layers the paper's missing Protocol unit over a lossy
// PacketConn: per-peer sequence numbers, explicit per-packet
// acknowledgements, timer-driven retransmission, duplicate suppression at
// the receiver, and an AIMD congestion window (the "RPC-optimized ...
// congestion control" §4.5 leaves for future work: additive increase per
// acknowledged packet, multiplicative decrease on retransmission; packets
// beyond the window queue at the sender). It itself implements PacketConn,
// so a Bridge can run over either the raw datagram path (the paper's
// pass-through Protocol unit) or the reliable one.
type Reliable struct {
	inner      PacketConn
	rto        time.Duration
	maxRetries int
	initWnd    float64
	maxWnd     float64
	backoff    retry.Policy

	mu         sync.Mutex
	tx         map[string]*txSession
	rx         map[string]*rxSession
	handler    func([]byte, string)
	deadLetter func(endpoint string, pkt []byte)
	stop       chan struct{}
	stopOnce   sync.Once
	wg         sync.WaitGroup

	// Counters. metrics.Counter is a drop-in for the atomic.Uint64 these
	// grew up as.
	Retransmits metrics.Counter
	Duplicates  metrics.Counter
	GaveUp      metrics.Counter
	DeadLetters metrics.Counter
}

// DescribeMetrics registers the protocol's reliability counters into reg.
func (r *Reliable) DescribeMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("reliable.retransmits", &r.Retransmits)
	reg.RegisterCounter("reliable.duplicates", &r.Duplicates)
	reg.RegisterCounter("reliable.gaveup", &r.GaveUp)
	reg.RegisterCounter("reliable.deadletter", &r.DeadLetters)
}

type pendingPkt struct {
	pkt      []byte
	deadline time.Time
	tries    int
}

type txSession struct {
	nextSeq uint64
	unacked map[uint64]*pendingPkt
	// AIMD congestion window, in packets.
	cwnd    float64
	waiting [][]byte // packets queued behind the window, already framed
}

// rxWindow bounds the duplicate-suppression memory per peer.
const rxWindow = 8192

type rxSession struct {
	maxSeen uint64 // highest sequence delivered
	seen    map[uint64]bool
	anySeen bool
}

// Packet types on the wire.
const (
	pktData byte = 1
	pktAck  byte = 2
)

// ReliableOptions tunes the protocol.
type ReliableOptions struct {
	// RTO is the retransmission timeout (default 20ms).
	RTO time.Duration
	// MaxRetries bounds retransmissions before giving up (default 10).
	MaxRetries int
	// InitialWindow is the starting congestion window in packets
	// (default 32). The window grows by one packet per window of acks and
	// halves on retransmission, floored at 1.
	InitialWindow float64
	// MaxWindow caps the congestion window (default 1024).
	MaxWindow float64
	// Backoff schedules retransmission delays per attempt (exponential
	// from RTO with deterministic seeded jitter by default). Base == 0
	// selects the default derived from RTO.
	Backoff retry.Policy
}

// NewReliable wraps inner with the reliability protocol.
func NewReliable(inner PacketConn, opts ReliableOptions) *Reliable {
	if opts.RTO <= 0 {
		opts.RTO = 20 * time.Millisecond
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 10
	}
	if opts.InitialWindow <= 0 {
		opts.InitialWindow = 32
	}
	if opts.MaxWindow <= 0 {
		opts.MaxWindow = 1024
	}
	if opts.Backoff.Base <= 0 {
		// Exponential backoff from RTO: successive retransmissions of the
		// same packet wait longer, so a congested path is not hammered at a
		// fixed cadence. Jitter decorrelates peers that lost packets in the
		// same burst; the fixed seed keeps schedules reproducible.
		opts.Backoff = retry.Policy{
			Base:       opts.RTO,
			Max:        8 * opts.RTO,
			Multiplier: 2,
			Jitter:     0.1,
			Seed:       0xDA66,
		}
	}
	r := &Reliable{
		inner:      inner,
		rto:        opts.RTO,
		maxRetries: opts.MaxRetries,
		initWnd:    opts.InitialWindow,
		maxWnd:     opts.MaxWindow,
		backoff:    opts.Backoff,
		tx:         make(map[string]*txSession),
		rx:         make(map[string]*rxSession),
		stop:       make(chan struct{}),
	}
	inner.SetHandler(r.onPacket)
	r.wg.Add(1)
	go r.retransmitLoop()
	return r
}

// Send transmits a datagram with at-least-once delivery (exactly-once to
// the handler, thanks to receiver-side dedup). Packets beyond the
// congestion window queue at the sender and drain as acks arrive.
func (r *Reliable) Send(endpoint string, pkt []byte) error {
	r.mu.Lock()
	s := r.session(endpoint)
	s.nextSeq++
	seq := s.nextSeq
	framed := make([]byte, 9+len(pkt))
	framed[0] = pktData
	binary.LittleEndian.PutUint64(framed[1:], seq)
	copy(framed[9:], pkt)
	if float64(len(s.unacked)) >= s.cwnd {
		s.waiting = append(s.waiting, framed)
		r.mu.Unlock()
		return nil
	}
	s.unacked[seq] = &pendingPkt{pkt: framed, deadline: time.Now().Add(r.rto)}
	r.mu.Unlock()
	return r.inner.Send(endpoint, framed)
}

// session returns (creating if needed) the tx session for endpoint. Caller
// holds r.mu.
//
// dagger:requires-lock mu
func (r *Reliable) session(endpoint string) *txSession {
	s := r.tx[endpoint]
	if s == nil {
		s = &txSession{unacked: make(map[uint64]*pendingPkt), cwnd: r.initWnd}
		r.tx[endpoint] = s
	}
	return s
}

// drainWindow releases queued packets into a freshly opened window. Caller
// holds r.mu; released packets are returned for sending outside the lock.
//
// dagger:requires-lock mu
func (r *Reliable) drainWindow(s *txSession) [][]byte {
	if len(s.waiting) == 0 {
		return nil
	}
	out := make([][]byte, 0, len(s.waiting))
	for len(s.waiting) > 0 && float64(len(s.unacked)) < s.cwnd {
		framed := s.waiting[0]
		s.waiting = s.waiting[1:]
		seq := binary.LittleEndian.Uint64(framed[1:9])
		s.unacked[seq] = &pendingPkt{pkt: framed, deadline: time.Now().Add(r.rto)}
		out = append(out, framed)
	}
	return out
}

// SetDeadLetter installs a callback invoked (outside the protocol lock, from
// the retransmission goroutine) for every packet the protocol abandons after
// MaxRetries retransmissions. pkt is the original datagram payload as passed
// to Send — the framing header is stripped. Without a dead-letter hook an
// abandoned packet vanishes silently and the caller's RPC hangs until its own
// timeout; with one, the caller can fail the RPC fast (the Bridge turns dead
// requests into synthetic FlagDead responses so clients see ErrPeerDead).
func (r *Reliable) SetDeadLetter(fn func(endpoint string, pkt []byte)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deadLetter = fn
}

// SetHandler installs the deduplicated receive callback.
func (r *Reliable) SetHandler(h func([]byte, string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handler = h
}

// LocalEndpoint returns the inner conn's endpoint.
func (r *Reliable) LocalEndpoint() string { return r.inner.LocalEndpoint() }

// Close stops retransmission and the inner conn.
func (r *Reliable) Close() error {
	r.stopOnce.Do(func() { close(r.stop) })
	err := r.inner.Close()
	r.wg.Wait()
	return err
}

// Unacked returns the number of packets awaiting acknowledgement.
func (r *Reliable) Unacked() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.tx {
		n += len(s.unacked)
	}
	return n
}

// Queued returns the number of packets waiting behind congestion windows.
func (r *Reliable) Queued() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.tx {
		n += len(s.waiting)
	}
	return n
}

// Window returns the current congestion window (in packets) toward a peer,
// or the initial window if no session exists yet.
func (r *Reliable) Window(endpoint string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.tx[endpoint]; s != nil {
		return s.cwnd
	}
	return r.initWnd
}

func (r *Reliable) onPacket(pkt []byte, from string) {
	if len(pkt) < 9 {
		return
	}
	typ := pkt[0]
	seq := binary.LittleEndian.Uint64(pkt[1:9])
	switch typ {
	case pktAck:
		r.mu.Lock()
		var release [][]byte
		if s := r.tx[from]; s != nil {
			if _, ok := s.unacked[seq]; ok {
				delete(s.unacked, seq)
				// Additive increase: one packet per window of acks.
				s.cwnd += 1 / s.cwnd
				if s.cwnd > r.maxWnd {
					s.cwnd = r.maxWnd
				}
			}
			release = r.drainWindow(s)
		}
		r.mu.Unlock()
		for _, framed := range release {
			_ = r.inner.Send(from, framed)
		}
	case pktData:
		// Always (re-)acknowledge, even duplicates: the ack may have been
		// lost.
		var ack [9]byte
		ack[0] = pktAck
		binary.LittleEndian.PutUint64(ack[1:], seq)
		_ = r.inner.Send(from, ack[:])

		r.mu.Lock()
		s := r.rx[from]
		if s == nil {
			s = &rxSession{seen: make(map[uint64]bool)}
			r.rx[from] = s
		}
		dup := s.seen[seq] || (s.anySeen && seq+rxWindow <= s.maxSeen)
		if !dup {
			s.seen[seq] = true
			if seq > s.maxSeen || !s.anySeen {
				s.maxSeen = seq
				s.anySeen = true
			}
			// Trim the window.
			if len(s.seen) > 2*rxWindow {
				for old := range s.seen {
					if old+rxWindow <= s.maxSeen {
						delete(s.seen, old)
					}
				}
			}
		} else {
			r.Duplicates.Add(1)
		}
		h := r.handler
		r.mu.Unlock()
		if !dup && h != nil {
			h(pkt[9:], from)
		}
	}
}

func (r *Reliable) retransmitLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.rto / 2)
	defer tick.Stop()
	type resend struct {
		endpoint string
		pkt      []byte
	}
	// Reused across ticks so the steady-state retransmit scan is
	// allocation-free.
	due := make([]resend, 0, 64)
	dead := make([]resend, 0, 16)
	for {
		select {
		case <-r.stop:
			return
		case now := <-tick.C:
			due = due[:0]
			dead = dead[:0]
			r.mu.Lock()
			onDead := r.deadLetter
			for ep, s := range r.tx {
				retransmitted := false
				for seq, p := range s.unacked {
					if now.Before(p.deadline) {
						continue
					}
					p.tries++
					if p.tries > r.maxRetries {
						delete(s.unacked, seq)
						r.GaveUp.Add(1)
						if onDead != nil {
							dead = append(dead, resend{ep, p.pkt[9:]})
						}
						continue
					}
					// Exponential backoff per attempt: the next deadline
					// stretches with each retransmission of this packet.
					retransmitted = true
					p.deadline = now.Add(r.backoff.Backoff(p.tries))
					r.Retransmits.Add(1)
					due = append(due, resend{ep, p.pkt})
				}
				if retransmitted {
					// Multiplicative decrease on loss — but only when a live
					// packet was actually retransmitted. A tick that only
					// abandons packets (give-up storm after a peer death) says
					// nothing new about path congestion, and halving per tick
					// would collapse the window to 1 before the peer's
					// replacement ever saw traffic.
					s.cwnd /= 2
					if s.cwnd < 1 {
						s.cwnd = 1
					}
				}
				for _, framed := range r.drainWindow(s) {
					due = append(due, resend{ep, framed})
				}
			}
			r.mu.Unlock()
			for _, d := range due {
				_ = r.inner.Send(d.endpoint, d.pkt)
			}
			for _, d := range dead {
				r.DeadLetters.Add(1)
				onDead(d.endpoint, d.pkt)
			}
		}
	}
}

var _ PacketConn = (*Reliable)(nil)

// String describes the protocol configuration.
func (r *Reliable) String() string {
	return fmt.Sprintf("reliable(rto=%v retries=%d)", r.rto, r.maxRetries)
}
