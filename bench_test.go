package dagger_test

// One benchmark per table and figure of the paper's evaluation (§5), plus
// ablation benches for the design decisions DESIGN.md calls out. Each
// benchmark runs the corresponding experiment and reports the headline
// quantity as a custom metric, so `go test -bench=. -benchmem` regenerates
// the paper's rows as benchmark output.

import (
	"io"
	"testing"

	"dagger/internal/experiments"
	"dagger/internal/fabric"
	"dagger/internal/flight"
	"dagger/internal/interconnect"
	"dagger/internal/kvs/mica"
	"dagger/internal/microsim"
	"dagger/internal/nicmodel"
	"dagger/internal/sim"
	"dagger/internal/wire"
	"dagger/internal/workload"
)

// BenchmarkFig3SocialNetworkBreakdown regenerates Figure 3: networking as a
// fraction of median and tail latency across Social Network tiers.
func BenchmarkFig3SocialNetworkBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := microsim.Run(microsim.RunConfig{
			Graph: microsim.SocialNetwork(), QPS: 600,
			Requests: 2000, Seed: 42, Mode: microsim.SharedCores,
		})
		b.ReportMetric(100*res.E2E.NetFrac(50), "e2e-net-med-%")
		b.ReportMetric(100*res.E2E.NetFrac(99), "e2e-net-p99-%")
	}
}

// BenchmarkFig4RPCSizeCDF regenerates Figure 4: the RPC size distribution.
func BenchmarkFig4RPCSizeCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunFig4(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Interference regenerates Figure 5: shared vs isolated cores.
func BenchmarkFig5Interference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sh := microsim.Run(microsim.RunConfig{
			Graph: microsim.SocialNetwork(), QPS: 600,
			Requests: 2000, Seed: 23, Mode: microsim.SharedCores,
		})
		iso := microsim.Run(microsim.RunConfig{
			Graph: microsim.SocialNetwork(), QPS: 600,
			Requests: 2000, Seed: 23, Mode: microsim.IsolatedNetworking,
		})
		b.ReportMetric(float64(sh.E2E.Total.Percentile(99))/float64(iso.E2E.Total.Percentile(99)), "tail-inflation-x")
	}
}

// BenchmarkTable3Comparison regenerates Table 3's Dagger row.
func BenchmarkTable3Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sat := experiments.RunEcho(experiments.EchoConfig{
			Iface:    interconnect.Config{Kind: interconnect.UPI, Batch: 4},
			Requests: 60_000, ToR: true, Seed: 1,
		})
		lat := experiments.RunEcho(experiments.EchoConfig{
			Iface:      interconnect.Config{Kind: interconnect.UPI, Batch: 1},
			OfferedRPS: 2e6, Requests: 40_000, ToR: true, Seed: 2,
		})
		b.ReportMetric(sat.Mrps(), "Mrps")
		b.ReportMetric(lat.MedianUs(), "rtt-us")
	}
}

// BenchmarkFig10Interfaces regenerates Figure 10: one sub-benchmark per
// CPU-NIC interface variant.
func BenchmarkFig10Interfaces(b *testing.B) {
	for _, cfg := range interconnect.Fig10Configs() {
		cfg := cfg
		b.Run(cfg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sat := experiments.RunEcho(experiments.EchoConfig{Iface: cfg, Requests: 60_000, Seed: 1})
				lat := experiments.RunEcho(experiments.EchoConfig{
					Iface: cfg, OfferedRPS: 0.85 * sat.ThroughputRPS, Requests: 60_000, Seed: 2,
				})
				b.ReportMetric(sat.Mrps(), "Mrps")
				b.ReportMetric(lat.MedianUs(), "med-us")
				b.ReportMetric(lat.P99Us(), "p99-us")
			}
		})
	}
}

// BenchmarkFig11LatencyThroughput regenerates Figure 11 (left) at the B=4
// knee point.
func BenchmarkFig11LatencyThroughput(b *testing.B) {
	for _, batch := range []int{1, 2, 4} {
		cfg := interconnect.Config{Kind: interconnect.UPI, Batch: batch}
		b.Run(cfg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunEcho(experiments.EchoConfig{
					Iface: cfg, OfferedRPS: 0.9 * cfg.SaturationRPS(), Requests: 60_000, Seed: 3,
				})
				b.ReportMetric(r.Mrps(), "Mrps")
				b.ReportMetric(r.MedianUs(), "med-us")
			}
		})
	}
}

// BenchmarkFig11ThreadScaling regenerates Figure 11 (right).
func BenchmarkFig11ThreadScaling(b *testing.B) {
	upi4 := interconnect.Config{Kind: interconnect.UPI, Batch: 4}
	for _, th := range []int{1, 2, 4, 8} {
		th := th
		b.Run(map[int]string{1: "threads-1", 2: "threads-2", 4: "threads-4", 8: "threads-8"}[th], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e2e := experiments.RunEcho(experiments.EchoConfig{Iface: upi4, Threads: th, Requests: 100_000, Seed: 4})
				raw := experiments.RunRawReads(th, 200_000)
				b.ReportMetric(e2e.Mrps(), "e2e-Mrps")
				b.ReportMetric(raw.ThroughputRPS/1e6, "raw-Mrps")
			}
		})
	}
}

// BenchmarkFig12KVS regenerates Figure 12: one sub-benchmark per KVS cell.
func BenchmarkFig12KVS(b *testing.B) {
	for _, cell := range experiments.Fig12Cells() {
		cell := cell
		cell.Requests = 40_000
		cell.Populate = 50_000
		b.Run(cell.System.String()+"-"+cell.Dataset.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sat := experiments.RunKVS(cell)
				lat := cell
				lat.OfferedRPS = 0.5 * sat.ThroughputRPS
				latRes := experiments.RunKVS(lat)
				b.ReportMetric(sat.Mrps(), "Mrps")
				b.ReportMetric(latRes.MedianUs(), "med-us")
				b.ReportMetric(latRes.P99Us(), "p99-us")
			}
		})
	}
}

// BenchmarkTable4FlightThreading regenerates Table 4.
func BenchmarkTable4FlightThreading(b *testing.B) {
	for _, th := range []flight.Threading{flight.Simple, flight.Optimized} {
		th := th
		b.Run(th.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := flight.RunModel(flight.ModelConfig{
					Threading: th, LoadRPS: 1000, Requests: 10_000, Seed: 4,
				})
				b.ReportMetric(float64(res.Latency.Percentile(50))/1e3, "med-us")
				b.ReportMetric(float64(res.Latency.Percentile(99))/1e3, "p99-us")
			}
		})
	}
}

// BenchmarkFig15FlightCurve regenerates Figure 15 around the knee.
func BenchmarkFig15FlightCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pre := flight.RunModel(flight.ModelConfig{Threading: flight.Optimized, LoadRPS: 20_000, Requests: 20_000, Seed: 7})
		post := flight.RunModel(flight.ModelConfig{Threading: flight.Optimized, LoadRPS: 45_000, Requests: 20_000, Seed: 7})
		b.ReportMetric(float64(pre.Latency.Percentile(99))/1e3, "pre-knee-p99-us")
		b.ReportMetric(float64(post.Latency.Percentile(99))/1e3, "post-knee-p99-us")
	}
}

// ===== Ablations (DESIGN.md §5) =====

// BenchmarkAblationLoadBalancers compares the NIC's steering schemes.
func BenchmarkAblationLoadBalancers(b *testing.B) {
	for _, kind := range []nicmodel.BalancerKind{
		nicmodel.BalancerUniform, nicmodel.BalancerStatic, nicmodel.BalancerObjectLevel,
	} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			bal := nicmodel.NewBalancer(kind, 8)
			key := []byte("hot-key")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bal.Pick(nicmodel.Steer{ConnFlow: uint16(i), Key: key})
			}
		})
	}
}

// BenchmarkAblationConnCache measures connection-cache behaviour under
// working sets that fit vs overflow the direct-mapped cache.
func BenchmarkAblationConnCache(b *testing.B) {
	for _, tc := range []struct {
		name  string
		conns int
	}{{"fits-64", 48}, {"conflicts-64", 256}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cm := nicmodel.NewConnectionManager(64)
			for i := 0; i < tc.conns; i++ {
				if err := cm.Open(uint32(i), nicmodel.ConnTuple{SrcFlow: uint16(i)}); err != nil {
					b.Fatal(err)
				}
			}
			var penalty sim.Time
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, p, err := cm.Lookup(uint32(i % tc.conns))
				if err != nil {
					b.Fatal(err)
				}
				penalty += p
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(penalty)/float64(b.N), "miss-penalty-ns/op")
				b.ReportMetric(100*cm.HitRate(), "hit-%")
			}
		})
	}
}

// BenchmarkAblationHCC measures host-coherent-cache behaviour for resident
// vs thrashing working sets.
func BenchmarkAblationHCC(b *testing.B) {
	for _, tc := range []struct {
		name   string
		footpr uint64
	}{{"resident-64KB", 64 << 10}, {"thrash-1MB", 1 << 20}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			h := nicmodel.NewHCC()
			var penalty sim.Time
			for i := 0; i < b.N; i++ {
				penalty += h.Access(uint64(i*64) % tc.footpr)
			}
			if b.N > 0 {
				b.ReportMetric(float64(penalty)/float64(b.N), "miss-penalty-ns/op")
			}
		})
	}
}

// BenchmarkAblationBatchWidth sweeps the soft-configured CCI-P batch width.
func BenchmarkAblationBatchWidth(b *testing.B) {
	for _, batch := range []int{1, 2, 4, 8} {
		cfg := interconnect.Config{Kind: interconnect.UPI, Batch: batch}
		b.Run(cfg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sat := experiments.RunEcho(experiments.EchoConfig{Iface: cfg, Requests: 50_000, Seed: 5})
				b.ReportMetric(sat.Mrps(), "Mrps")
			}
		})
	}
}

// ===== Functional-stack micro-benchmarks (real goroutines, wall clock) ====

// BenchmarkFunctionalEchoRPC measures the real Go stack's round-trip cost.
func BenchmarkFunctionalEchoRPC(b *testing.B) {
	fab := fabric.NewFabric()
	cnic, _ := fab.CreateNIC(1, 1, 1024)
	snic, _ := fab.CreateNIC(2, 1, 1024)
	srv := newEchoServer(b, snic)
	defer srv.stop()
	cli := newClient(b, cnic, 2)
	defer cli.close()
	payload := make([]byte, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.call(0, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalMICAGet measures the real MICA port's GET path.
func BenchmarkFunctionalMICAGet(b *testing.B) {
	fab := fabric.NewFabric()
	cnic, _ := fab.CreateNIC(1, 1, 1024)
	snic, _ := fab.CreateNIC(2, 4, 1024)
	store := mica.NewStore(4, 1<<12, 1<<22)
	srv, err := mica.Serve(snic, store, serverCfg())
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Stop()
	cli := newClient(b, cnic, 2)
	defer cli.close()
	mc := mica.NewClient(cli.rc)
	key := workload.KeyForRecord(workload.Tiny, 1, nil)
	if err := mc.Set(key, []byte("benchval")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireMarshal measures the frame codec.
func BenchmarkWireMarshal(b *testing.B) {
	m := &wire.Message{
		Header:  wire.Header{Kind: wire.KindRequest, ConnID: 1, RPCID: 2, FnID: 3},
		Payload: make([]byte, 24),
	}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = wire.MarshalAppend(buf, m)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := wire.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
