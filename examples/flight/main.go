// Flight Registration example: the paper's 8-tier microservice application
// (§5.7, Figure 13) running end to end on the Dagger RPC stack, under both
// threading models, with the request tracing system pointing at the
// bottleneck tier.
//
// Run with: go run ./examples/flight
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"dagger/internal/flight"
	"dagger/internal/trace"
)

func main() {
	// ---- Functional run: real registrations through all eight tiers ----
	for _, mode := range []struct {
		name string
		cfg  flight.Config
	}{
		{"Simple (dispatch threads)", flight.Config{Citizens: 500, FlightWork: 2 * time.Millisecond}},
		{"Optimized (worker threads)", flight.Config{
			Citizens: 500, FlightWork: 2 * time.Millisecond,
			Threading: flight.OptimizedThreading(4),
		}},
	} {
		app, err := flight.New(mode.cfg)
		if err != nil {
			log.Fatal(err)
		}
		const n = 8
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rec, err := app.RegisterPassenger(flight.Passenger{
					ID: uint64(i), FlightNo: uint32(1000 + i), Bags: uint32(i % 4),
				})
				if err != nil {
					log.Printf("register %d: %v", i, err)
					return
				}
				if i == 0 {
					fmt.Printf("  sample record: passenger=%d flight=%d gate=%d passportOK=%v\n",
						rec.PassengerID, rec.FlightNo, rec.Gate, rec.PassportOK)
				}
			}(i)
		}
		wg.Wait()
		fmt.Printf("%s: %d concurrent registrations in %v\n", mode.name, n, time.Since(start).Round(time.Millisecond))

		// The staff front-end audits the Airport database asynchronously.
		rec, err := app.StaffLookup(3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  staff audit of passenger 3: flight=%d gate=%d\n\n", rec.FlightNo, rec.Gate)
		app.Close()
	}

	// ---- Timing model: the Table 4 experiment at paper scale ----
	fmt.Println("Timing model (Table 4 conditions):")
	for _, th := range []flight.Threading{flight.Simple, flight.Optimized} {
		tr := trace.NewCollector(0)
		res := flight.RunModel(flight.ModelConfig{
			Threading: th, LoadRPS: 2000, Requests: 20000, Seed: 1, Tracer: tr,
		})
		fmt.Printf("  %-9s @2Krps: med=%5.1fus p99=%6.1fus drops=%.2f%% bottleneck=%s\n",
			th,
			float64(res.Latency.Percentile(50))/1e3,
			float64(res.Latency.Percentile(99))/1e3,
			100*res.DropFrac(),
			tr.Analyze().Bottleneck())
	}
}
