// Quickstart: a minimal Dagger RPC client and server.
//
// It creates an in-process acceleration fabric, brings up a NIC for each
// endpoint, registers a greeter function on an RpcThreadedServer, and calls
// it synchronously and asynchronously from an RpcClient — the §4.2
// programming model end to end.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"dagger/internal/core"
	"dagger/internal/fabric"
)

const (
	clientAddr = 0x0A000001
	serverAddr = 0x0A000002
	fnGreet    = 0
)

func main() {
	// The fabric plays the role of the FPGA + network: it hosts a software
	// NIC per endpoint and steers frames between them.
	fab := fabric.NewFabric()
	clientNIC, err := fab.CreateNIC(clientAddr, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	serverNIC, err := fab.CreateNIC(serverAddr, 2, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Server: one dispatch thread per NIC flow runs the handler directly
	// (the low-latency threading model).
	srv := core.NewRpcThreadedServer(serverNIC, core.ServerConfig{})
	if err := srv.Register(fnGreet, "greeter.greet", func(_ context.Context, req []byte) ([]byte, error) {
		return []byte("Hello, " + string(req) + "!"), nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	// Client: bound to flow 0 of its NIC, one connection to the server.
	cli, err := core.NewRpcClient(clientNIC, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.OpenConnection(serverAddr); err != nil {
		log.Fatal(err)
	}

	// Synchronous (blocking) call. The context deadline becomes the RPC's
	// budget on the wire: every downstream tier sees the time remaining and
	// sheds the request once it expires instead of doing doomed work.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	resp, err := cli.CallContext(ctx, fnGreet, []byte("Dagger"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sync :", string(resp))

	// Asynchronous (non-blocking) calls with completion callbacks.
	var wg sync.WaitGroup
	for _, name := range []string{"microservices", "FPGAs", "memory interconnects"} {
		wg.Add(1)
		name := name
		if err := cli.CallAsyncContext(ctx, fnGreet, []byte(name), func(resp []byte, err error) {
			defer wg.Done()
			if err != nil {
				log.Printf("async %s: %v", name, err)
				return
			}
			fmt.Println("async:", string(resp))
		}); err != nil {
			log.Fatal(err)
		}
	}
	wg.Wait()
	fmt.Printf("completion queue drained %d entries\n", cli.CompletionQueue().Total())
}
