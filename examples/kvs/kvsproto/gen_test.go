package kvsproto

import (
	"os"
	"testing"

	"dagger/internal/idl"
)

// TestGeneratedCodeFresh regenerates kvs.gen.go from kvs.idl through the
// live code generator and diffs it against the checked-in file, so IDL or
// codegen drift fails CI instead of shipping stale stubs. Regenerate with:
//
//	go run ./cmd/daggergen -in examples/kvs/kvsproto/kvs.idl -pkg kvsproto -out examples/kvs/kvsproto/kvs.gen.go
func TestGeneratedCodeFresh(t *testing.T) {
	src, err := os.ReadFile("kvs.idl")
	if err != nil {
		t.Fatalf("read kvs.idl: %v", err)
	}
	file, err := idl.Parse(string(src))
	if err != nil {
		t.Fatalf("parse kvs.idl: %v", err)
	}
	want := idl.Generate(file, "kvsproto")
	got, err := os.ReadFile("kvs.gen.go")
	if err != nil {
		t.Fatalf("read kvs.gen.go: %v", err)
	}
	if string(got) != want {
		t.Fatalf("kvs.gen.go is stale: regenerate with daggergen (see test comment); generated %d bytes, checked in %d bytes", len(want), len(got))
	}
}
