// KVS example: the paper's Listing 1 service, generated from IDL, served
// over Dagger — and, alongside it, the MICA port with object-level NIC
// steering (§5.6–5.7).
//
// The typed stubs in ./kvsproto were produced by:
//
//	go run ./cmd/daggergen -in examples/kvs/kvsproto/kvs.idl -pkg kvsproto \
//	    -out examples/kvs/kvsproto/kvs.gen.go
//
// Run with: go run ./examples/kvs
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dagger/examples/kvs/kvsproto"
	"dagger/internal/core"
	"dagger/internal/fabric"
	"dagger/internal/kvs/mica"
	"dagger/internal/workload"
)

const (
	clientAddr  = 1
	idlKVSAddr  = 2
	micaKVSAddr = 3
)

// idlStore implements the generated KeyValueStoreServer interface with a
// plain map — the "user code" side of Listing 1.
type idlStore struct {
	m map[[32]byte][32]byte
}

func (s *idlStore) Get(_ context.Context, req *kvsproto.GetRequest) (*kvsproto.GetResponse, error) {
	resp := &kvsproto.GetResponse{Timestamp: req.Timestamp}
	resp.Value = s.m[req.Key]
	return resp, nil
}

func (s *idlStore) Set(_ context.Context, req *kvsproto.SetRequest) (*kvsproto.SetResponse, error) {
	s.m[req.Key] = req.Value
	return &kvsproto.SetResponse{Timestamp: req.Timestamp, Ok: true}, nil
}

func main() {
	fab := fabric.NewFabric()

	// ---- Part 1: the IDL-generated KeyValueStore service ----
	cnic, err := fab.CreateNIC(clientAddr, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	snic, err := fab.CreateNIC(idlKVSAddr, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	srv := core.NewRpcThreadedServer(snic, core.ServerConfig{})
	if err := kvsproto.RegisterKeyValueStore(srv, &idlStore{m: map[[32]byte][32]byte{}}); err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	cli, err := core.NewRpcClient(cnic, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.OpenConnection(idlKVSAddr); err != nil {
		log.Fatal(err)
	}
	kv := kvsproto.NewKeyValueStoreClient(cli)

	// Typed stubs are ctx-first: the deadline budget rides the wire, so a
	// slow or overloaded server sheds the request instead of doing doomed
	// work after the client gives up.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var key, val [32]byte
	copy(key[:], "dagger:paper")
	copy(val[:], "ASPLOS 2021")
	if _, err := kv.Set(ctx, &kvsproto.SetRequest{Timestamp: 1, Key: key, Value: val}); err != nil {
		log.Fatal(err)
	}
	got, err := kv.Get(ctx, &kvsproto.GetRequest{Timestamp: 2, Key: key})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IDL KVS: get(%q) = %q\n", trim(key), trim(got.Value))

	// ---- Part 2: MICA over Dagger with object-level steering ----
	micaNIC, err := fab.CreateNIC(micaKVSAddr, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	store := mica.NewStore(4, 1<<12, 1<<22) // 4 partitions = 4 NIC flows
	msrv, err := mica.Serve(micaNIC, store, core.ServerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer msrv.Stop()

	// A client may hold connections to several services over one ring (the
	// SRQ model): open a second connection on the existing client.
	micaConn, err := cli.OpenConnection(micaKVSAddr)
	if err != nil {
		log.Fatal(err)
	}
	mc := mica.NewClientConn(cli, micaConn)

	// Drive a small Zipfian workload through the MICA port, under the same
	// deadline budget as the IDL section: the ctx deadline rides the wire on
	// every op, so an overloaded store sheds expired work instead of serving
	// answers nobody is waiting for.
	gen := workload.NewKVGenerator(7, workload.Tiny, workload.WriteIntensive, 0.99)
	sets, gets, hits := 0, 0, 0
	for i := 0; i < 2000; i++ {
		op := gen.Next()
		if op.Op == workload.OpSet {
			if err := mc.SetContext(ctx, op.Key, op.Value); err != nil {
				log.Fatal(err)
			}
			sets++
		} else {
			gets++
			if _, err := mc.GetContext(ctx, op.Key); err == nil {
				hits++
			}
		}
	}
	fmt.Printf("MICA over Dagger: %d sets, %d gets, %d hits (Zipf 0.99)\n", sets, gets, hits)
	for p := 0; p < store.NumPartitions(); p++ {
		part := store.Partition(p)
		fmt.Printf("  partition %d: %d sets, %d hits (served by NIC flow %d only)\n",
			p, part.Sets, part.Hits, p)
	}
}

func trim(b [32]byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b[:])
}
