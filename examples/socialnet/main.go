// Social Network example: the paper's motivating application (Figure 1)
// running for real on the Dagger RPC stack — eleven tiers on one fabric,
// with MICA-backed post storage and a memcached-backed user cache.
//
// Run with: go run ./examples/socialnet
package main

import (
	"fmt"
	"log"

	"dagger/internal/social"
)

func main() {
	app, err := social.New(social.Config{Users: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	posts := []struct {
		author, text string
		media        []uint64
	}{
		{"user1", "shipping the Dagger reproduction today @user2", nil},
		{"user2", "nice! details at https://dl.acm.org/doi/10.1145/3445814.3446696", nil},
		{"user1", "offload the whole RPC stack @user2 @user3, photos attached", []uint64{101, 102}},
	}
	for _, p := range posts {
		post, err := app.ComposePost(p.author, p.text, p.media)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("composed post %d by %s: mentions=%v urls=%v media=%d\n",
			post.ID, post.Author, post.Mentions, post.URLs, len(post.MediaIDs))
		for _, short := range post.URLs {
			orig, _ := app.ResolveShortURL(short)
			fmt.Printf("  %s -> %s\n", short, orig)
		}
	}

	for _, user := range []string{"user1", "user2"} {
		tl, err := app.ReadUserTimeline(user, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s timeline (%d posts):\n", user, len(tl))
		for _, p := range tl {
			fmt.Printf("  #%d %q\n", p.ID, p.Text)
		}
	}
	fmt.Printf("stats: %d composed, %d timeline reads\n", app.Composed.Load(), app.Reads.Load())
}
