// Multi-tenant example: several independent Dagger NIC instances on one
// acceleration fabric (§5.7, Figure 14, §6): each tenant gets its own
// "virtual but physical" NIC with its own soft configuration — one tenant
// runs a memcached cache with uniform steering, another runs MICA with the
// object-level balancer, and a third runs a plain RPC service — all served
// concurrently, with per-tenant packet-monitor counters.
//
// Run with: go run ./examples/multitenant
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"dagger/internal/core"
	"dagger/internal/fabric"
	"dagger/internal/kvs/memcached"
	"dagger/internal/kvs/mica"
)

const (
	clientAddr uint32 = 1
	mcdAddr    uint32 = 10 // tenant A: memcached
	micaAddr   uint32 = 20 // tenant B: MICA
	echoAddr   uint32 = 30 // tenant C: latency-sensitive RPC service
)

func main() {
	fab := fabric.NewFabric()

	// Tenant A: memcached with 2 flows, default static steering.
	mcdNIC, err := fab.CreateNIC(mcdAddr, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	mcdStore := memcached.New(8, 0)
	mcdSrv, err := memcached.Serve(mcdNIC, mcdStore, core.ServerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer mcdSrv.Stop()

	// Tenant B: MICA with 4 flows and the object-level balancer (its NIC is
	// configured differently from tenant A's — per-tenant soft config).
	micaNIC, err := fab.CreateNIC(micaAddr, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	micaStore := mica.NewStore(4, 1<<12, 1<<22)
	micaSrv, err := mica.Serve(micaNIC, micaStore, core.ServerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer micaSrv.Stop()

	// Tenant C: a small dispatch-thread RPC service.
	echoNIC, err := fab.CreateNIC(echoAddr, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	echoSrv := core.NewRpcThreadedServer(echoNIC, core.ServerConfig{})
	if err := echoSrv.Register(0, "echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := echoSrv.Start(); err != nil {
		log.Fatal(err)
	}
	defer echoSrv.Stop()

	// One client host drives all three tenants concurrently; each worker
	// goroutine owns one RpcClient (one NIC flow) with connections to every
	// tenant sharing its ring (SRQ).
	clientNIC, err := fab.CreateNIC(clientAddr, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := core.NewRpcClientPool(clientNIC, 3)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	var wg sync.WaitGroup
	for i := 0; i < pool.Size(); i++ {
		cli := pool.Client(i)
		mcdConn, _ := cli.OpenConnection(mcdAddr)
		micaConn, _ := cli.OpenConnection(micaAddr)
		echoConn, _ := cli.OpenConnection(echoAddr)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mcdCli := memcached.NewClient(cli) // mcdConn is the default (first)
			micaCli := mica.NewClientConn(cli, micaConn)
			for j := 0; j < 200; j++ {
				key := fmt.Sprintf("w%d-k%d", i, j)
				if _, err := mcdCli.Set(key, []byte(key), 0); err != nil {
					log.Printf("mcd set: %v", err)
					return
				}
				if err := micaCli.Set([]byte(key), []byte(key)); err != nil {
					log.Printf("mica set: %v", err)
					return
				}
				if _, err := cli.CallConn(echoConn, 0, []byte(key)); err != nil {
					log.Printf("echo: %v", err)
					return
				}
			}
			_ = mcdConn
		}(i)
	}
	wg.Wait()

	fmt.Println("per-tenant NIC packet monitors after 600 ops x 3 workers:")
	for _, t := range []struct {
		name string
		nic  *fabric.SoftNIC
	}{
		{"memcached (2 flows, static LB)", mcdNIC},
		{"MICA      (4 flows, object-level LB)", micaNIC},
		{"echo      (1 flow,  dispatch)", echoNIC},
	} {
		fmt.Printf("  %-38s in=%4d out=%4d bytes-in=%6d drops=%d\n",
			t.name, t.nic.RPCsIn.Load(), t.nic.RPCsOut.Load(), t.nic.BytesIn.Load(), t.nic.Drops.Load())
	}
	fmt.Printf("MICA partitions loaded: ")
	for p := 0; p < micaStore.NumPartitions(); p++ {
		fmt.Printf("p%d=%d ", p, micaStore.Partition(p).Sets)
	}
	fmt.Println()
}
