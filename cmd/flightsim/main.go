// Command flightsim runs the Flight Registration timing model (§5.7) with
// configurable threading model, load, and tracing — the tool behind Table 4
// and Figure 15.
//
// Usage:
//
//	flightsim -threading optimized -load 25000 -requests 40000 -trace
package main

import (
	"flag"
	"fmt"
	"os"

	"dagger/internal/flight"
	"dagger/internal/trace"
)

func main() {
	threading := flag.String("threading", "simple", "threading model: simple | optimized")
	load := flag.Float64("load", 2000, "offered load, requests/second")
	requests := flag.Int("requests", 40000, "requests to offer")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "worker pool size (optimized; default 4)")
	doTrace := flag.Bool("trace", false, "print the tracing system's bottleneck report")
	flag.Parse()

	var th flight.Threading
	switch *threading {
	case "simple":
		th = flight.Simple
	case "optimized":
		th = flight.Optimized
	default:
		fmt.Fprintln(os.Stderr, "flightsim: -threading must be simple or optimized")
		os.Exit(2)
	}

	var tr *trace.Collector
	if *doTrace {
		tr = trace.NewCollector(0)
	}
	res := flight.RunModel(flight.ModelConfig{
		Threading: th, LoadRPS: *load, Requests: *requests,
		Seed: *seed, Workers: *workers, Tracer: tr,
	})

	fmt.Printf("threading=%s load=%.0f rps offered=%d completed=%d dropped=%d (%.2f%%)\n",
		th, *load, res.Offered, res.Completed, res.Dropped, 100*res.DropFrac())
	fmt.Printf("latency: med=%.1fus p90=%.1fus p99=%.1fus max=%.1fus\n",
		float64(res.Latency.Percentile(50))/1e3,
		float64(res.Latency.Percentile(90))/1e3,
		float64(res.Latency.Percentile(99))/1e3,
		float64(res.Latency.Max())/1e3)
	if tr != nil {
		fmt.Print(tr.Analyze())
	}
}
