// Command socialsim runs the §3 microservice characterization: the Social
// Network (or Media) call-graph under a configurable load, printing the
// per-tier latency breakdown, the networking share of median/tail latency,
// and the RPC size distribution — the data behind Figures 3-5.
//
// Usage:
//
//	socialsim -app social -qps 600 -requests 4000 -mode shared
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dagger/internal/microsim"
	"dagger/internal/stats"
)

func main() {
	app := flag.String("app", "social", "application: social | media")
	qps := flag.Float64("qps", 400, "offered end-to-end load")
	requests := flag.Int("requests", 4000, "requests to complete")
	mode := flag.String("mode", "shared", "networking placement: shared | isolated")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	var g *microsim.Graph
	switch *app {
	case "social":
		g = microsim.SocialNetwork()
	case "media":
		g = microsim.MediaServing()
	default:
		fmt.Fprintln(os.Stderr, "socialsim: -app must be social or media")
		os.Exit(2)
	}
	var m microsim.Mode
	switch *mode {
	case "shared":
		m = microsim.SharedCores
	case "isolated":
		m = microsim.IsolatedNetworking
	default:
		fmt.Fprintln(os.Stderr, "socialsim: -mode must be shared or isolated")
		os.Exit(2)
	}

	res := microsim.Run(microsim.RunConfig{
		Graph: g, QPS: *qps, Requests: *requests, Seed: *seed, Mode: m,
	})

	fmt.Printf("%s @ %.0f QPS (%s networking), %d requests\n\n", g.Name, *qps, m, res.Finished)
	fmt.Printf("%-14s %10s %10s %10s %9s %9s\n", "tier", "med(us)", "p99(us)", "visits", "net@med", "net@p99")
	names := make([]string, 0, len(res.PerTier))
	for name := range res.PerTier {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := res.PerTier[name]
		if ts.Total.Count() == 0 {
			continue
		}
		fmt.Printf("%-14s %10.0f %10.0f %10d %8.0f%% %8.0f%%\n", name,
			float64(ts.Total.Percentile(50))/1e3,
			float64(ts.Total.Percentile(99))/1e3,
			ts.Total.Count(),
			100*ts.NetFrac(50), 100*ts.NetFrac(99))
	}
	fmt.Printf("%-14s %10.0f %10.0f %10d %8.0f%% %8.0f%%\n", "end-to-end",
		float64(res.E2E.Total.Percentile(50))/1e3,
		float64(res.E2E.Total.Percentile(99))/1e3,
		res.E2E.Total.Count(),
		100*res.E2E.NetFrac(50), 100*res.E2E.NetFrac(99))

	req := stats.NewCDF(res.AllReqSizes())
	rsp := stats.NewCDF(res.AllRspSizes())
	fmt.Printf("\nRPC sizes: requests P(<=512B)=%.2f median=%dB; responses P(<=64B)=%.2f median=%dB\n",
		req.At(512), req.Quantile(0.5), rsp.At(64), rsp.Quantile(0.5))
}
