// Command daggerbench regenerates the tables and figures of the Dagger
// paper's evaluation (§5). Each experiment id corresponds to one table or
// figure; `daggerbench -list` enumerates them and `daggerbench -run all`
// reproduces the full evaluation.
//
// Usage:
//
//	daggerbench -run fig10          # one experiment
//	daggerbench -run all            # everything
//	daggerbench -run fig12 -quick   # 10x fewer requests, for smoke tests
//	daggerbench -run overload -metrics report.json   # archive telemetry
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dagger/internal/experiments"
)

func main() {
	run := flag.String("run", "", "experiment id to run (or 'all')")
	list := flag.Bool("list", false, "list experiment ids")
	quick := flag.Bool("quick", false, "run with reduced request counts")
	metricsPath := flag.String("metrics", "", "write the unified per-experiment metrics report (JSON) to this path")
	flag.Parse()

	reg := experiments.Registry()
	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Println("  ", id)
		}
		if *run == "" {
			os.Exit(2)
		}
		return
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		r, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "daggerbench: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		fmt.Printf("==== %s ====\n", id)
		if err := r(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "daggerbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %v ----\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *metricsPath != "" {
		if err := writeMetricsReport(*metricsPath); err != nil {
			fmt.Fprintf(os.Stderr, "daggerbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics report: %d experiment(s) -> %s\n",
			experiments.Report().Len(), *metricsPath)
	}
}

// writeMetricsReport dumps the unified per-experiment telemetry collected by
// the runners (experiments.PublishMetrics) as the JSON report CI archives.
func writeMetricsReport(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.Report().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
