// Command daggervet runs Dagger's project-specific static analyzers over
// the repository (see internal/analysis for what each enforces and why):
//
//	simdeterminism  no wall clock / global rand / map-order dependence in sim code
//	locksafety      no copied locks, no blocking or returning with a mutex held
//	hotpathalloc    no avoidable allocation on the RPC data path
//	errchecklite    no silently dropped errors on Conn/transport/ring operations
//
// Usage:
//
//	daggervet [packages]
//
// Package patterns follow the go tool: a literal directory ("./internal/sim"),
// or a "..." wildcard ("./..."). With no arguments, ./... is assumed. Test
// files (in-package and external _test packages) are loaded and analyzed by
// the analyzers that opt into them — simdeterminism in particular polices
// unseeded randomness and wall-clock reads in simulation tests.
// Diagnostics print as file:line:col: message (analyzer); the exit status is
// 1 if any diagnostic was reported, 2 on usage or load errors. Individual
// findings can be suppressed with a trailing or preceding
// "//daggervet:ignore=<analyzer>" comment, reviewed in code review like any
// other exception.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"dagger/internal/analysis"
)

var analyzers = []*analysis.Analyzer{
	analysis.SimDeterminism,
	analysis.LockSafety,
	analysis.HotPathAlloc,
	analysis.ErrCheckLite,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	// Test files are analyzed too: analyzers that opt in (simdeterminism)
	// police in-package and external test code the same as production code.
	loader.IncludeTests = true
	dirs, err := expand(loader.ModuleRoot(), patterns)
	if err != nil {
		fatal(err)
	}
	exit := 0
	report := func(pkg *analysis.Package) {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			fmt.Println(d)
			exit = 1
		}
	}
	for _, dir := range dirs {
		pkg, err := loader.Load(dir, "")
		if err != nil {
			fatal(err)
		}
		report(pkg)
		xpkg, err := loader.LoadXTest(dir, "")
		if err != nil {
			fatal(err)
		}
		if xpkg != nil {
			report(xpkg)
		}
	}
	os.Exit(exit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daggervet:", err)
	os.Exit(2)
}

// expand resolves go-tool-style package patterns to package directories.
func expand(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		base, wild := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = root
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !wild {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// Skip ignored trees the same way the go tool does.
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test Go
// file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
