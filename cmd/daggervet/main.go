// Command daggervet runs Dagger's project-specific static analyzers over
// the repository (see internal/analysis for what each enforces and why):
//
//	simdeterminism  no wall clock / global rand / map-order dependence in sim code
//	locksafety      no copied locks, no blocking or returning with a mutex held
//	hotpathalloc    no avoidable allocation on the RPC data path
//	errchecklite    no silently dropped errors on Conn/transport/ring operations
//	bufownership    pooled buffers are released or handed off on every path
//	budgetflow      deadline-budget contexts propagate to downstream RPC calls
//	shedcheck       shed verdicts are consulted before dispatching the request
//
// Usage:
//
//	daggervet [-json] [-as importpath] [packages]
//
// Package patterns follow the go tool: a literal directory ("./internal/sim"),
// or a "..." wildcard ("./..."). With no arguments, ./... is assumed. Test
// files (in-package and external _test packages) are loaded and analyzed by
// the analyzers that opt into them — simdeterminism in particular polices
// unseeded randomness and wall-clock reads in simulation tests.
//
// Diagnostics print as file:line:col: message (analyzer), sorted by position;
// with -json they print instead as a JSON array of
// {file, line, col, analyzer, message} objects with file paths relative to
// the module root, the machine-readable form CI archives. The -as flag
// attributes a literal package directory to the given import path before the
// analyzers' path scoping runs (fixtures and out-of-tree experiments).
//
// The exit status is 0 when the tree is clean, 1 if any diagnostic was
// reported, 2 on usage or load errors. Individual findings can be suppressed
// with a "// dagger:ignore <analyzer> <reason>" comment on the offending
// line or the line above; unused suppressions are themselves diagnosed, and
// the reason is mandatory, so exceptions stay reviewable in code review.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dagger/internal/analysis"
)

var analyzers = []*analysis.Analyzer{
	analysis.SimDeterminism,
	analysis.LockSafety,
	analysis.HotPathAlloc,
	analysis.ErrCheckLite,
	analysis.BufOwnership,
	analysis.BudgetFlow,
	analysis.ShedCheck,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json wire form of one finding. File is relative to
// the module root with forward slashes, so output is stable across checkouts.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run is the testable entry point: it parses args, analyzes the requested
// packages, writes findings to stdout, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("daggervet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	jsonOut := flags.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	asPath := flags.String("as", "", "attribute the analyzed package to this import path (single literal directory only)")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "daggervet:", err)
		return 2
	}
	// Test files are analyzed too: analyzers that opt in (simdeterminism)
	// police in-package and external test code the same as production code.
	loader.IncludeTests = true
	dirs, err := expand(loader.ModuleRoot(), patterns)
	if err != nil {
		fmt.Fprintln(stderr, "daggervet:", err)
		return 2
	}
	if *asPath != "" && len(dirs) != 1 {
		fmt.Fprintln(stderr, "daggervet: -as requires exactly one package directory")
		return 2
	}

	var diags []analysis.Diagnostic
	collect := func(pkg *analysis.Package) error {
		ds, err := analysis.Run(pkg, analyzers)
		if err != nil {
			return err
		}
		diags = append(diags, ds...)
		return nil
	}
	for _, dir := range dirs {
		pkg, err := loader.Load(dir, *asPath)
		if err != nil {
			fmt.Fprintln(stderr, "daggervet:", err)
			return 2
		}
		if err := collect(pkg); err != nil {
			fmt.Fprintln(stderr, "daggervet:", err)
			return 2
		}
		xpkg, err := loader.LoadXTest(dir, xtestPath(*asPath))
		if err != nil {
			fmt.Fprintln(stderr, "daggervet:", err)
			return 2
		}
		if xpkg != nil {
			if err := collect(xpkg); err != nil {
				fmt.Fprintln(stderr, "daggervet:", err)
				return 2
			}
		}
	}

	// Sort for deterministic output regardless of package load order, so the
	// text form diffs cleanly and the JSON form can be golden-tested.
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     relPath(loader.ModuleRoot(), d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "daggervet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// xtestPath derives the synthetic import path for a directory's external
// test package from the -as override, mirroring the loader's default.
func xtestPath(asPath string) string {
	if asPath == "" {
		return ""
	}
	return asPath + "/xtest"
}

// relPath renders filename relative to the module root with forward slashes;
// paths outside the root (GOROOT sources, which never carry diagnostics) are
// returned unchanged.
func relPath(root, filename string) string {
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// expand resolves go-tool-style package patterns to package directories.
func expand(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		base, wild := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = root
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !wild {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// Skip ignored trees the same way the go tool does.
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test Go
// file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
