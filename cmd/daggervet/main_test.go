package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONGolden pins the -json output format, the diagnostic ordering
// (sorted by file, line, column, analyzer, message), and the exit code for a
// dirty package. The fixture is attributed into shedcheck's scope via -as,
// exactly how out-of-tree code would be vetted.
func TestJSONGolden(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{"-json", "-as", "dagger/internal/core/fixture", "./internal/analysis/testdata/shedcheck"}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errs.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "shedcheck.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Errorf("-json output differs from testdata/shedcheck.golden.json:\n got:\n%s\nwant:\n%s", out.Bytes(), golden)
	}
}

// TestJSONCleanPackage pins the clean-tree contract CI relies on: exit 0 and
// an empty JSON array (never null), so downstream tooling can parse the
// artifact unconditionally.
func TestJSONCleanPackage(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{"-json", "./internal/dataplane"}, &out, &errs)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stdout: %s, stderr: %s)", code, out.String(), errs.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestTextOutput checks the human-readable form still reports the same
// findings, one per line, with the analyzer name trailing.
func TestTextOutput(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{"-as", "dagger/internal/core/fixture", "./internal/analysis/testdata/shedcheck"}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errs.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d diagnostics, want 4:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		if !strings.HasSuffix(line, "(shedcheck)") {
			t.Errorf("diagnostic missing analyzer suffix: %q", line)
		}
	}
}

// TestBadPatternExitsTwo pins the usage/load-error exit code.
func TestBadPatternExitsTwo(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errs); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if errs.Len() == 0 {
		t.Error("expected an error message on stderr")
	}
}

// TestAsRequiresSingleDir pins that -as cannot be combined with wildcards:
// attributing many packages to one import path would defeat path scoping.
func TestAsRequiresSingleDir(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-as", "dagger/internal/core/fixture", "./internal/..."}, &out, &errs); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
