// Command daggerload is a load generator for the functional Dagger stack
// across real machines (or processes): it runs an echo server or a
// closed-loop client over the UDP transport with the reliability protocol,
// measuring wall-clock throughput and latency percentiles.
//
// Server:
//
//	daggerload -mode server -listen 127.0.0.1:9000
//
// Client:
//
//	daggerload -mode client -listen 127.0.0.1:0 -peer 127.0.0.1:9000 \
//	    -clients 4 -requests 20000 -payload 64
//
// Both sides default to the reliable protocol; -raw uses bare datagrams
// (the paper's pass-through Protocol unit).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"dagger/internal/core"
	"dagger/internal/fabric"
	"dagger/internal/stats"
	"dagger/internal/transport"
)

const (
	serverNICAddr uint32 = 100
	clientNICBase uint32 = 1
	fnEcho        uint16 = 0
)

func main() {
	mode := flag.String("mode", "", "server | client")
	listen := flag.String("listen", "127.0.0.1:0", "local UDP address")
	peer := flag.String("peer", "", "server UDP endpoint (client mode)")
	clients := flag.Int("clients", 1, "concurrent clients (client mode)")
	requests := flag.Int("requests", 10000, "requests per client (client mode)")
	payload := flag.Int("payload", 64, "payload bytes")
	flows := flag.Int("flows", 4, "server NIC flows (server mode)")
	raw := flag.Bool("raw", false, "bare datagrams instead of the reliable protocol")
	duration := flag.Duration("runfor", 0, "server lifetime (0 = forever)")
	flag.Parse()

	conn, err := transport.NewUDPConn(*listen)
	if err != nil {
		fatal(err)
	}
	var pc transport.PacketConn = conn
	if !*raw {
		pc = transport.NewReliable(conn, transport.ReliableOptions{})
	}

	switch *mode {
	case "server":
		runServer(pc, conn.LocalEndpoint(), *flows, *duration)
	case "client":
		if *peer == "" {
			fatal(fmt.Errorf("client mode needs -peer"))
		}
		runClient(pc, *peer, *clients, *requests, *payload)
	default:
		fmt.Fprintln(os.Stderr, "daggerload: -mode must be server or client")
		os.Exit(2)
	}
}

func runServer(pc transport.PacketConn, endpoint string, flows int, lifetime time.Duration) {
	fab := fabric.NewFabric()
	// Clients occupy addresses 1..99; all reachable back through the peer
	// endpoint recorded per inbound frame is not needed — the route table
	// is filled lazily from the first client's -listen via its frames'
	// source. For simplicity the server echoes through a wildcard route
	// installed at first contact.
	routes := transport.NewRouteTable()
	bridge := transport.NewBridge(fab, &learningConn{PacketConn: pc, routes: routes}, routes)
	defer bridge.Close()

	nic, err := fab.CreateNIC(serverNICAddr, flows, 4096)
	if err != nil {
		fatal(err)
	}
	srv := core.NewRpcThreadedServer(nic, core.ServerConfig{})
	if err := srv.Register(fnEcho, "load.echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	}); err != nil {
		fatal(err)
	}
	if err := srv.Start(); err != nil {
		fatal(err)
	}
	defer srv.Stop()
	fmt.Printf("daggerload server: NIC %d on %s, %d flows\n", serverNICAddr, endpoint, flows)
	if lifetime > 0 {
		time.Sleep(lifetime)
	} else {
		select {}
	}
	fmt.Printf("served %d requests\n", srv.Handled.Load())
}

// learningConn fills the route table from observed frame sources, so the
// server can answer clients at any address range without pre-configuration.
type learningConn struct {
	transport.PacketConn
	routes *transport.RouteTable
	mu     sync.Mutex
	known  map[string]bool
}

func (l *learningConn) SetHandler(h func([]byte, string)) {
	l.PacketConn.SetHandler(func(pkt []byte, from string) {
		l.mu.Lock()
		if l.known == nil {
			l.known = map[string]bool{}
		}
		if !l.known[from] {
			l.known[from] = true
			// Client NIC addresses live below the server's.
			l.routes.Add(transport.Route{Lo: clientNICBase, Hi: serverNICAddr - 1, Endpoint: from})
		}
		l.mu.Unlock()
		h(pkt, from)
	})
}

func runClient(pc transport.PacketConn, peer string, clients, requests, payload int) {
	fab := fabric.NewFabric()
	routes := transport.NewRouteTable(transport.Route{Lo: serverNICAddr, Hi: serverNICAddr, Endpoint: peer})
	bridge := transport.NewBridge(fab, pc, routes)
	defer bridge.Close()

	nic, err := fab.CreateNIC(clientNICBase, clients, 4096)
	if err != nil {
		fatal(err)
	}
	pool, err := core.NewRpcClientPool(nic, clients)
	if err != nil {
		fatal(err)
	}
	defer pool.Close()
	if _, err := pool.ConnectAll(serverNICAddr); err != nil {
		fatal(err)
	}

	req := make([]byte, payload)
	var mu sync.Mutex
	hist := stats.NewHistogram()
	errs := 0
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli := pool.Client(i)
			for j := 0; j < requests; j++ {
				t0 := time.Now()
				_, err := cli.Call(fnEcho, req)
				d := time.Since(t0)
				mu.Lock()
				if err != nil {
					errs++
				} else {
					hist.Record(d.Nanoseconds())
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := clients * requests
	fmt.Printf("daggerload client: %d requests (%dB) over %v\n", total, payload, elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput: %.0f rps  errors: %d\n", float64(total-errs)/elapsed.Seconds(), errs)
	fmt.Printf("  latency: med=%.1fus p90=%.1fus p99=%.1fus max=%.1fus\n",
		float64(hist.Percentile(50))/1e3, float64(hist.Percentile(90))/1e3,
		float64(hist.Percentile(99))/1e3, float64(hist.Max())/1e3)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daggerload:", err)
	os.Exit(1)
}
