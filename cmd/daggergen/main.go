// Command daggergen is Dagger's IDL code generator (§4.2): it parses an
// interface definition file and emits Go message codecs, typed client
// stubs, and server dispatch glue over the core RPC API.
//
// Usage:
//
//	daggergen -in service.idl -pkg servicepb [-out servicepb.go]
//
// With no -out, generated code is written to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"dagger/internal/idl"
)

func main() {
	in := flag.String("in", "", "input IDL file (required)")
	pkg := flag.String("pkg", "", "Go package name for generated code (required)")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	if *in == "" || *pkg == "" {
		fmt.Fprintln(os.Stderr, "usage: daggergen -in service.idl -pkg name [-out file.go]")
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	file, err := idl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	code := idl.Generate(file, *pkg)
	if *out == "" {
		fmt.Print(code)
		return
	}
	if err := os.WriteFile(*out, []byte(code), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "daggergen: wrote %s (%d messages, %d services)\n",
		*out, len(file.Messages), len(file.Services))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daggergen:", err)
	os.Exit(1)
}
