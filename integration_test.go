package dagger_test

// Cross-module integration tests: the IDL-generated stubs over the
// functional stack, multi-cache-line RPCs through the software reassembler,
// and a full application path across two fabrics bridged over real UDP with
// the reliable transport protocol.

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dagger/examples/kvs/kvsproto"
	"dagger/internal/core"
	"dagger/internal/fabric"
	"dagger/internal/flight"
	"dagger/internal/trace"
	"dagger/internal/transport"
	"dagger/internal/wire"
)

// mapKVS implements the generated KeyValueStoreServer.
type mapKVS struct {
	mu sync.Mutex
	m  map[[32]byte][32]byte
}

func (s *mapKVS) Get(_ context.Context, req *kvsproto.GetRequest) (*kvsproto.GetResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := &kvsproto.GetResponse{Timestamp: req.Timestamp}
	resp.Value = s.m[req.Key]
	return resp, nil
}

func (s *mapKVS) Set(_ context.Context, req *kvsproto.SetRequest) (*kvsproto.SetResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[req.Key] = req.Value
	return &kvsproto.SetResponse{Timestamp: req.Timestamp, Ok: true}, nil
}

// TestGeneratedStubsEndToEnd drives the Listing 1 service through its
// daggergen-generated client and server glue.
func TestGeneratedStubsEndToEnd(t *testing.T) {
	fab := fabric.NewFabric()
	cnic, _ := fab.CreateNIC(1, 1, 256)
	snic, _ := fab.CreateNIC(2, 2, 256)
	srv := core.NewRpcThreadedServer(snic, core.ServerConfig{})
	if err := kvsproto.RegisterKeyValueStore(srv, &mapKVS{m: map[[32]byte][32]byte{}}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	cli, _ := core.NewRpcClient(cnic, 0)
	defer cli.Close()
	if _, err := cli.OpenConnection(2); err != nil {
		t.Fatal(err)
	}
	kv := kvsproto.NewKeyValueStoreClient(cli)

	var key, val [32]byte
	copy(key[:], "integration")
	copy(val[:], "through-stubs")
	setResp, err := kv.Set(context.Background(), &kvsproto.SetRequest{Timestamp: 1, Key: key, Value: val})
	if err != nil || !setResp.Ok {
		t.Fatalf("set: %+v %v", setResp, err)
	}
	getResp, err := kv.Get(context.Background(), &kvsproto.GetRequest{Timestamp: 2, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if getResp.Value != val || getResp.Timestamp != 2 {
		t.Fatalf("get = %+v", getResp)
	}

	// Async stub path.
	done := make(chan *kvsproto.GetResponse, 1)
	if err := kv.GetAsync(context.Background(), &kvsproto.GetRequest{Timestamp: 3, Key: key}, func(r *kvsproto.GetResponse, err error) {
		if err != nil {
			t.Errorf("async: %v", err)
		}
		done <- r
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.Value != val {
			t.Fatal("async value mismatch")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("async stub timeout")
	}
}

// TestMultiLineRPCs pushes payloads spanning 1..40 cache lines through the
// stack, exercising the §4.7 software reassembly path end to end.
func TestMultiLineRPCs(t *testing.T) {
	fab := fabric.NewFabric()
	cnic, _ := fab.CreateNIC(1, 1, 256)
	snic, _ := fab.CreateNIC(2, 1, 256)
	srv := core.NewRpcThreadedServer(snic, core.ServerConfig{})
	_ = srv.Register(0, "sum", func(_ context.Context, req []byte) ([]byte, error) {
		var sum byte
		for _, b := range req {
			sum += b
		}
		return append(req, sum), nil
	})
	_ = srv.Start()
	defer srv.Stop()
	cli, _ := core.NewRpcClient(cnic, 0)
	defer cli.Close()
	_, _ = cli.OpenConnection(2)

	for _, n := range []int{0, 1, 31, 32, 33, 64, 100, 500, 1000, 2500} {
		payload := make([]byte, n)
		var want byte
		for i := range payload {
			payload[i] = byte(i * 13)
			want += payload[i]
		}
		resp, err := cli.Call(0, payload)
		if err != nil {
			t.Fatalf("len %d (%d lines): %v", n, wire.LinesFor(n), err)
		}
		if len(resp) != n+1 || !bytes.Equal(resp[:n], payload) || resp[n] != want {
			t.Fatalf("len %d: corrupted multi-line round trip", n)
		}
	}
}

// TestFlightOverUDPBridge splits the flight app's client side from its
// servers... kept simpler: a traced echo service across two fabrics over
// real UDP with the reliability protocol.
func TestTracedServiceOverUDP(t *testing.T) {
	cliFab := fabric.NewFabric()
	srvFab := fabric.NewFabric()
	cliConn, err := transport.NewUDPConn("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvConn, err := transport.NewUDPConn("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cb := transport.NewBridge(cliFab,
		transport.NewReliable(cliConn, transport.ReliableOptions{}),
		transport.NewRouteTable(transport.Route{Lo: 100, Hi: 100, Endpoint: srvConn.LocalEndpoint()}))
	defer cb.Close()
	sb := transport.NewBridge(srvFab,
		transport.NewReliable(srvConn, transport.ReliableOptions{}),
		transport.NewRouteTable(transport.Route{Lo: 1, Hi: 1, Endpoint: cliConn.LocalEndpoint()}))
	defer sb.Close()

	snic, _ := srvFab.CreateNIC(100, 2, 256)
	srv := core.NewRpcThreadedServer(snic, core.ServerConfig{Threading: core.WorkerThreads, Workers: 2})
	tc := trace.NewCollector(0)
	_ = srv.SetTracer(tc)
	_ = srv.Register(0, "remote.work", func(_ context.Context, req []byte) ([]byte, error) {
		return append([]byte("done:"), req...), nil
	})
	_ = srv.Start()
	defer srv.Stop()

	cnic, _ := cliFab.CreateNIC(1, 1, 256)
	cli, _ := core.NewRpcClient(cnic, 0)
	defer cli.Close()
	_, _ = cli.OpenConnection(100)
	for i := 0; i < 25; i++ {
		resp, err := cli.Call(0, []byte(fmt.Sprintf("req-%d", i)))
		if err != nil {
			t.Fatalf("call %d over UDP: %v", i, err)
		}
		if string(resp) != fmt.Sprintf("done:req-%d", i) {
			t.Fatalf("call %d: %q", i, resp)
		}
	}
	rep := tc.Analyze()
	if rep.Bottleneck() != "remote.work" {
		t.Fatalf("trace report: %s", rep)
	}
	if rep.Profiles[0].Spans != 25 {
		t.Fatalf("spans = %d", rep.Profiles[0].Spans)
	}
}

// TestFlightAppAndModelAgree sanity-checks that the functional flight app
// and the timing model agree on the threading models' qualitative behavior.
func TestFlightAppAndModelAgree(t *testing.T) {
	// Functional: worker threading overlaps slow Flight lookups.
	app, err := flight.New(flight.Config{
		Citizens: 100, FlightWork: 3 * time.Millisecond,
		Threading: flight.OptimizedThreading(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := app.RegisterPassenger(flight.Passenger{ID: uint64(i), FlightNo: 1, Bags: 1}); err != nil {
				t.Errorf("register: %v", err)
			}
		}(i)
	}
	wg.Wait()
	functionalOverlap := time.Since(start) < 10*time.Millisecond
	app.Close()

	// Model: optimized sustains far more load than simple.
	simple := flight.RunModel(flight.ModelConfig{Threading: flight.Simple, LoadRPS: 10000, Requests: 10000, Seed: 2})
	opt := flight.RunModel(flight.ModelConfig{Threading: flight.Optimized, LoadRPS: 10000, Requests: 10000, Seed: 2})
	modelAgrees := opt.DropFrac() < simple.DropFrac()

	if !functionalOverlap {
		t.Error("functional app: worker threading did not overlap slow lookups")
	}
	if !modelAgrees {
		t.Errorf("model: optimized drops (%.3f) not below simple (%.3f)", opt.DropFrac(), simple.DropFrac())
	}
}
